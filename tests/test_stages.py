"""Tests for the typed stage-graph engine (:mod:`repro.core.stages`).

Three layers:

* the engine itself, on toy graphs: structured validation errors
  (cycle, missing producer, duplicate producer, type mismatch),
  deterministic topological order, uniform degradation
  (fallback/skip_if_degraded) and phase-span grouping;
* serialization: the artifact-set save/load round trip and its
  fail-loudly corruption contract;
* the Propeller graph: the committed golden topology
  (``tests/golden/stage_graph.json``), partial execution + resume
  bit-identity, the hypothesis property that *any* valid topological
  execution order produces the same ``PipelineResult.digest()``, and
  the pinned instrumented-build ratio.

Golden regeneration: ``REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m
pytest tests/test_stages.py`` (same contract as tests/test_golden.py).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import (
    INSTRUMENTED_BUILD_FACTOR,
    PipelineConfig,
    PropellerPipeline,
    pipeline_stage_graph,
)
from repro.core.stages import (
    Artifact,
    ArtifactSet,
    Fallback,
    Stage,
    StageContext,
    StageGraph,
    StageGraphError,
)
from repro.faults import RetriesExhausted
from repro.obs import Counters, Tracer
from repro.synth import PRESETS, generate_workload

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))


# ----------------------------------------------------------------------
# Toy-graph helpers


def _ctx() -> StageContext:
    """A StageContext over a stub pipeline (tracer + counters only)."""
    return StageContext(SimpleNamespace(
        config=None, tracer=Tracer(), counters=Counters(),
        buildsys=None, solve_cache=None))


def _stage(name, run, **kwargs) -> Stage:
    return Stage(name=name, run=run, **kwargs)


def _produce(**values):
    def run(ctx, inputs):
        return dict(values)
    return run


A_INT = Artifact[int]("number")
A_STR = Artifact[str]("text")


# ----------------------------------------------------------------------
# Validation


class TestValidation:
    def test_missing_producer(self):
        with pytest.raises(StageGraphError) as err:
            StageGraph([_stage("a", _produce(), inputs=(A_INT,))])
        assert err.value.kind == "missing-producer"
        assert err.value.artifact == "number"
        assert err.value.stage == "a"

    def test_cycle(self):
        a = Artifact("a")
        b = Artifact("b")
        with pytest.raises(StageGraphError) as err:
            StageGraph([
                _stage("one", _produce(a=1), inputs=(b,), outputs=(a,)),
                _stage("two", _produce(b=2), inputs=(a,), outputs=(b,)),
            ])
        assert err.value.kind == "cycle"
        assert "one" in str(err.value) and "two" in str(err.value)

    def test_duplicate_producer(self):
        with pytest.raises(StageGraphError) as err:
            StageGraph([
                _stage("one", _produce(number=1), outputs=(A_INT,)),
                _stage("two", _produce(number=2), outputs=(A_INT,)),
            ])
        assert err.value.kind == "duplicate-producer"
        assert err.value.artifact == "number"

    def test_duplicate_stage_name(self):
        with pytest.raises(StageGraphError) as err:
            StageGraph([
                _stage("one", _produce(number=1), outputs=(A_INT,)),
                _stage("one", _produce(text="x"), outputs=(A_STR,)),
            ])
        assert err.value.kind == "duplicate-producer"

    def test_type_mismatch_between_declarations(self):
        as_str = Artifact[str]("number")
        with pytest.raises(StageGraphError) as err:
            StageGraph([
                _stage("one", _produce(number=1), outputs=(A_INT,)),
                _stage("two", _produce(), inputs=(as_str,)),
            ])
        assert err.value.kind == "type-mismatch"
        assert err.value.artifact == "number"

    def test_runtime_type_mismatch(self):
        graph = StageGraph([
            _stage("one", _produce(number="not an int"), outputs=(A_INT,)),
        ])
        with pytest.raises(StageGraphError) as err:
            graph.execute(_ctx(), {})
        assert err.value.kind == "type-mismatch"

    def test_undeclared_output_rejected(self):
        graph = StageGraph([
            _stage("one", _produce(number=1, extra=2), outputs=(A_INT,)),
        ])
        with pytest.raises(StageGraphError) as err:
            graph.execute(_ctx(), {})
        assert err.value.kind == "bad-output"

    def test_skip_on_unknown_stage(self):
        with pytest.raises(StageGraphError) as err:
            StageGraph([
                _stage("one", _produce(number=1), outputs=(A_INT,),
                       fallback=Fallback(_produce(number=0)),
                       skip_if_degraded=("ghost",)),
            ])
        assert err.value.kind == "unknown-stage"

    def test_skip_on_stage_that_cannot_degrade(self):
        with pytest.raises(StageGraphError) as err:
            StageGraph([
                _stage("one", _produce(number=1), outputs=(A_INT,)),
                _stage("two", _produce(text="x"), inputs=(A_INT,),
                       outputs=(A_STR,),
                       fallback=Fallback(_produce(text="")),
                       skip_if_degraded=("one",)),
            ])
        assert err.value.kind == "unknown-stage"

    def test_unknown_stop_after(self):
        graph = StageGraph([_stage("one", _produce(number=1),
                                   outputs=(A_INT,))])
        with pytest.raises(StageGraphError) as err:
            graph.execute(_ctx(), {}, stop_after="ghost")
        assert err.value.kind == "unknown-stage"

    def test_missing_seed_value(self):
        seed = Artifact[int]("seeded")
        graph = StageGraph(
            [_stage("one", _produce(number=1), inputs=(seed,),
                    outputs=(A_INT,))],
            seeds=(seed,))
        with pytest.raises(StageGraphError) as err:
            graph.execute(_ctx(), {})
        assert err.value.kind == "missing-producer"
        assert err.value.artifact == "seeded"

    def test_invalid_execution_order(self):
        graph = StageGraph([
            _stage("one", _produce(number=1), outputs=(A_INT,)),
            _stage("two", _produce(text="x"), inputs=(A_INT,),
                   outputs=(A_STR,)),
        ])
        with pytest.raises(StageGraphError) as err:
            graph.execute(_ctx(), {}, order=["two", "one"])
        assert err.value.kind == "invalid-order"
        with pytest.raises(StageGraphError) as err:
            graph.execute(_ctx(), {}, order=["one"])
        assert err.value.kind == "invalid-order"


# ----------------------------------------------------------------------
# Topological order


class TestTopoOrder:
    def test_registration_order_breaks_ties(self):
        a, b, c = Artifact("a"), Artifact("b"), Artifact("c")
        graph = StageGraph([
            _stage("root", _produce(a=1), outputs=(a,)),
            _stage("left", _produce(b=1), inputs=(a,), outputs=(b,)),
            _stage("right", _produce(c=1), inputs=(a,), outputs=(c,)),
        ])
        assert graph.order == ("root", "left", "right")
        flipped = StageGraph([
            _stage("root", _produce(a=1), outputs=(a,)),
            _stage("right", _produce(c=1), inputs=(a,), outputs=(c,)),
            _stage("left", _produce(b=1), inputs=(a,), outputs=(b,)),
        ])
        assert flipped.order == ("root", "right", "left")

    def test_dependencies_override_registration(self):
        a, b = Artifact("a"), Artifact("b")
        graph = StageGraph([
            _stage("consumer", _produce(b=1), inputs=(a,), outputs=(b,)),
            _stage("producer", _produce(a=1), outputs=(a,)),
        ])
        assert graph.order == ("producer", "consumer")


# ----------------------------------------------------------------------
# Execution: degradation, skipping, spans


class TestExecution:
    def _boom(self, ctx, inputs):
        raise RetriesExhausted("unit", "key", 3, ("crash", "crash", "crash"))

    def test_fallback_degrades_with_span_and_counter(self):
        graph = StageGraph([
            _stage("flaky", self._boom, outputs=(A_INT,), phase="p",
                   fallback=Fallback(_produce(number=0))),
        ])
        ctx = _ctx()
        execution = graph.execute(ctx, {})
        assert execution.value("number") == 0
        assert execution.degraded_reasons() == ("flaky",)
        assert execution.artifacts.records["flaky"].status == "fallback"
        assert ctx.counters.count("faults.degraded") == 1
        names = [s.name for s in ctx.tracer.spans]
        assert "degraded:flaky" in names
        assert "phase:p" in names

    def test_silent_fallback_does_not_degrade(self):
        graph = StageGraph([
            _stage("flaky", self._boom, outputs=(A_INT,),
                   fallback=Fallback(_produce(number=0), degrades=False)),
        ])
        ctx = _ctx()
        execution = graph.execute(ctx, {})
        assert execution.value("number") == 0
        assert execution.degraded_reasons() == ()
        assert ctx.counters.count("faults.degraded") == 0
        assert not [s for s in ctx.tracer.spans
                    if s.name.startswith("degraded:")]

    def test_no_fallback_propagates(self):
        graph = StageGraph([
            _stage("hard", self._boom, outputs=(A_INT,), phase="p"),
        ])
        ctx = _ctx()
        with pytest.raises(RetriesExhausted):
            graph.execute(ctx, {})
        # The phase span is still closed and recorded on the way out.
        assert [s.name for s in ctx.tracer.spans] == ["phase:p"]

    def test_skip_if_degraded_is_silent_and_spanless(self):
        graph = StageGraph([
            _stage("flaky", self._boom, outputs=(A_INT,),
                   fallback=Fallback(_produce(number=0))),
            _stage("downstream", _produce(text="computed"),
                   inputs=(A_INT,), outputs=(A_STR,), phase="down",
                   fallback=Fallback(_produce(text="skipped")),
                   skip_if_degraded=("flaky",)),
        ])
        ctx = _ctx()
        execution = graph.execute(ctx, {})
        assert execution.value("text") == "skipped"
        # Only the upstream degradation counts; the skip is silent.
        assert execution.degraded_reasons() == ("flaky",)
        assert ctx.counters.count("faults.degraded") == 1
        assert execution.artifacts.records["downstream"].status == "skipped"
        assert "phase:down" not in [s.name for s in ctx.tracer.spans]

    def test_contiguous_stages_share_one_phase_span(self):
        a, b = Artifact("a"), Artifact("b")
        graph = StageGraph([
            _stage("one", _produce(a=1), outputs=(a,), phase="joint"),
            _stage("two", _produce(b=1), inputs=(a,), outputs=(b,),
                   phase="joint"),
        ])
        ctx = _ctx()
        graph.execute(ctx, {})
        assert [s.name for s in ctx.tracer.spans] == ["phase:joint"]

    def test_stop_after_runs_a_prefix(self):
        a, b = Artifact("a"), Artifact("b")
        graph = StageGraph([
            _stage("one", _produce(a=1), outputs=(a,)),
            _stage("two", _produce(b=1), inputs=(a,), outputs=(b,)),
        ])
        execution = graph.execute(_ctx(), {}, stop_after="one")
        assert not execution.complete
        assert execution.value("a") == 1
        with pytest.raises(StageGraphError) as err:
            execution.value("b")
        assert err.value.kind == "missing-producer"


# ----------------------------------------------------------------------
# ArtifactSet serialization


class TestArtifactSet:
    def _run_partial(self):
        a, b = Artifact("a"), Artifact("b")
        graph = StageGraph([
            _stage("one", _produce(a={"payload": 7}), outputs=(a,)),
            _stage("two", _produce(b=2), inputs=(a,), outputs=(b,)),
        ])
        return graph, graph.execute(_ctx(), {}, stop_after="one")

    def test_save_load_resume_round_trip(self, tmp_path):
        graph, execution = self._run_partial()
        execution.artifacts.meta["program"] = "digest"
        execution.save(tmp_path / "arts")

        loaded = ArtifactSet.load(tmp_path / "arts")
        assert loaded.values["a"] == {"payload": 7}
        assert loaded.meta["program"] == "digest"
        assert loaded.records["one"].status == "computed"

        resumed = graph.execute(_ctx(), {}, resume=loaded)
        assert resumed.complete
        assert resumed.value("b") == 2
        # The replayed stage kept its original record.
        assert resumed.artifacts.records["one"].status == "computed"

    def test_corrupt_artifact_fails_loudly(self, tmp_path):
        _, execution = self._run_partial()
        root = execution.save(tmp_path / "arts")
        payload = root / "a.artifact"
        payload.write_bytes(payload.read_bytes()[:-3] + b"zzz")
        with pytest.raises(StageGraphError) as err:
            ArtifactSet.load(root)
        assert err.value.kind == "resume-mismatch"
        assert err.value.artifact == "a"

    def test_missing_manifest_fails(self, tmp_path):
        with pytest.raises(StageGraphError) as err:
            ArtifactSet.load(tmp_path / "nothing-here")
        assert err.value.kind == "resume-mismatch"


# ----------------------------------------------------------------------
# The Propeller graph


def _cheap_config(**overrides) -> PipelineConfig:
    defaults = dict(pgo_steps=5_000, lbr_branches=10_000, workers=72,
                    enforce_ram=False)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def stage_program():
    return generate_workload(PRESETS["531.deepsjeng"], scale=0.3, seed=7)


@pytest.fixture(scope="module")
def full_digest(stage_program):
    return PropellerPipeline(stage_program, _cheap_config()).run().digest()


class TestPipelineGraph:
    def test_golden_topology(self):
        """The DAG shape is a frozen public surface (CI gates on it)."""
        described = pipeline_stage_graph().describe()
        text = json.dumps(described, indent=2, sort_keys=True) + "\n"
        path = GOLDEN_DIR / "stage_graph.json"
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(text)
        assert path.exists(), (
            f"missing golden file {path}; run with REPRO_REGEN_GOLDEN=1 "
            "to create it")
        assert text == path.read_text()

    def test_incremental_graph_prepends_plan_dirty(self):
        base = pipeline_stage_graph()
        incr = pipeline_stage_graph(incremental=True)
        assert incr.order == ("plan-dirty",) + base.order
        assert [a.name for a in incr.seeds] == ["incr_state"]

    def test_canonical_order_is_the_run_order(self):
        assert pipeline_stage_graph().order == (
            "pgo-profile", "inline", "baseline-build", "stale-match",
            "metadata-build", "lbr-profile", "wpa", "relink")

    def test_stop_after_resume_bit_identical(self, stage_program,
                                             full_digest, tmp_path):
        config = _cheap_config()
        first = PropellerPipeline(stage_program, config)
        partial = first.run_stages(stop_after="wpa")
        assert not partial.complete
        partial.save(tmp_path / "arts")

        second = PropellerPipeline(stage_program, config)
        resumed = second.run_stages(resume=ArtifactSet.load(tmp_path / "arts"))
        result = second.result_from(resumed)
        assert result.digest() == full_digest
        # Accounting survives the round trip too.
        assert result.phase_seconds["wpa_convert"] >= 0.0
        assert list(result.phase_seconds) == [
            "pgo_profile_run", "pgo_instrumented_build", "opt_build",
            "metadata_build", "lbr_profile_run", "wpa_convert",
            "prop_backends", "prop_link"]

    def test_resume_rejects_different_program(self, stage_program, tmp_path):
        config = _cheap_config()
        partial = PropellerPipeline(stage_program, config).run_stages(
            stop_after="pgo-profile")
        partial.save(tmp_path / "arts")
        other = generate_workload(PRESETS["505.mcf"], scale=1.0, seed=11)
        with pytest.raises(StageGraphError) as err:
            PropellerPipeline(other, config).run_stages(
                resume=ArtifactSet.load(tmp_path / "arts"))
        assert err.value.kind == "resume-mismatch"

    def test_partial_result_assembly_refuses(self, stage_program):
        pipe = PropellerPipeline(stage_program, _cheap_config())
        partial = pipe.run_stages(stop_after="baseline-build")
        with pytest.raises(StageGraphError) as err:
            pipe.result_from(partial)
        assert err.value.kind == "missing-producer"

    def test_instrumented_build_factor_pinned(self, stage_program):
        """Satellite: the modelled instrumented-build ratio, as a named
        constant, pinned where the magic number used to live."""
        assert INSTRUMENTED_BUILD_FACTOR == 0.9
        result = PropellerPipeline(stage_program, _cheap_config()).run()
        assert result.phase_seconds["pgo_instrumented_build"] == (
            pytest.approx(result.phase_seconds["opt_build"]
                          * INSTRUMENTED_BUILD_FACTOR))


@st.composite
def _topo_orders(draw):
    """A uniformly-random *valid* topological order of the pipeline DAG."""
    graph = pipeline_stage_graph()
    remaining = {
        stage.name: {dep.name for dep in graph._dependencies(stage)}
        for stage in graph.stages
    }
    order = []
    while remaining:
        ready = sorted(n for n, deps in remaining.items() if not deps)
        pick = draw(st.sampled_from(ready))
        order.append(pick)
        del remaining[pick]
        for deps in remaining.values():
            deps.discard(pick)
    return order


class TestOrderInvariance:
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(order=_topo_orders())
    def test_any_valid_topo_order_same_digest(self, stage_program,
                                              full_digest, order):
        """Artifacts are pure functions of their inputs: executing the
        stages in any dependency-respecting order builds bit-identical
        binaries and directives."""
        pipe = PropellerPipeline(stage_program, _cheap_config())
        result = pipe.result_from(pipe.run_stages(order=order))
        assert result.digest() == full_digest
