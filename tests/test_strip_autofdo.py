"""Tests for strip semantics (§5.8) and AutoFDO conversion (§2.2)."""

import pytest

from repro.bolt import run_bolt
from repro.codegen import CodeGenOptions, compile_program
from repro.core.pipeline import PipelineConfig, PropellerPipeline
from repro.elf.strip import StripError, strip_executable
from repro.linker import LinkOptions, link
from repro.profiles import collect_lbr_profile, convert_to_ir_profile


class TestStrip:
    def test_propeller_binary_strips(self, pipeline_result):
        exe = pipeline_result.optimized.executable
        stripped, saved = strip_executable(exe)
        assert saved > 0
        assert len(stripped.symbols) < len(exe.symbols)
        assert not stripped.retained_relocations
        # The execution model (the "code") is untouched.
        assert stripped.exec_blocks is exe.exec_blocks

    def test_baseline_binary_strips(self, pipeline_result):
        stripped, saved = strip_executable(pipeline_result.baseline.executable)
        assert saved >= 0

    @pytest.mark.slow
    def test_bolt_binary_cannot_strip(self, small_program, pipeline_config):
        pipe = PropellerPipeline(small_program, pipeline_config)
        result = pipe.run()
        bm = pipe.build_bolt_input(result.ir_profile)
        bolt = run_bolt(bm.executable, result.perf)
        with pytest.raises(StripError, match="misaligned"):
            strip_executable(bolt.executable)

    def test_local_cold_symbols_removed(self, pipeline_result):
        exe = pipeline_result.optimized.executable
        cold = [n for n in exe.symbols if n.endswith(".cold")]
        stripped, _ = strip_executable(exe)
        assert cold  # propeller created cold-part symbols...
        assert not any(n.endswith(".cold") for n in stripped.symbols)  # ...all local


class TestAutoFDO:
    def test_conversion_produces_ir_profile(self, small_program):
        objs = compile_program(small_program, CodeGenOptions(bb_addr_map=True))
        exe = link([c.obj for c in objs], LinkOptions(keep_bb_addr_map=True)).executable
        perf = collect_lbr_profile(exe, max_branches=60_000, period=31, seed=2)
        profile = convert_to_ir_profile(exe, perf)
        hot = profile.hot_functions()
        assert hot
        top = hot[0]
        assert profile.block_counts(top)
        assert profile.edge_counts(top)
        # Counts reference real IR blocks.
        fn = small_program.function(top)
        for bb in profile.block_counts(top):
            assert fn.has_block(bb)

    def test_autofdo_drives_baseline_build(self, small_program):
        """An AutoFDO profile slots into the same codegen interface."""
        objs = compile_program(small_program, CodeGenOptions(bb_addr_map=True))
        exe = link([c.obj for c in objs], LinkOptions(keep_bb_addr_map=True)).executable
        perf = collect_lbr_profile(exe, max_branches=60_000, period=31, seed=2)
        profile = convert_to_ir_profile(exe, perf)
        rebuilt = compile_program(small_program, CodeGenOptions(ir_profile=profile))
        relinked = link([c.obj for c in rebuilt], LinkOptions())
        assert relinked.executable.text_size > 0

    def test_unsampled_functions_absent(self, small_program):
        objs = compile_program(small_program, CodeGenOptions(bb_addr_map=True))
        exe = link([c.obj for c in objs], LinkOptions(keep_bb_addr_map=True)).executable
        perf = collect_lbr_profile(exe, max_branches=5_000, period=97, seed=2)
        profile = convert_to_ir_profile(exe, perf)
        sampled = set(profile.blocks)
        all_funcs = {f.name for f in small_program.all_functions()}
        assert sampled < all_funcs  # sparse by construction