"""Tests for the workload generator and presets (Table 2 shapes)."""

import pytest

from repro.ir import Call, verify_program
from repro.synth import ALL_PRESETS, PRESETS, SPEC_PRESETS, WSC_PRESETS, generate_workload


class TestPresets:
    def test_table2_benchmarks_present(self):
        for name in ("clang", "mysql", "spanner", "search", "superroot", "bigtable"):
            assert name in PRESETS

    def test_spec_suite_has_eight_benchmarks(self):
        # 520.omnetpp is excluded: it fails to build with clang (§5.4).
        assert len(SPEC_PRESETS) == 8
        assert not any("omnetpp" in p.name for p in SPEC_PRESETS)

    def test_wsc_failure_features(self):
        assert "rseq" in PRESETS["spanner"].features
        assert "fips_integrity" in PRESETS["bigtable"].features
        assert "huge_binary" in PRESETS["superroot"].features
        assert not PRESETS["search"].features

    def test_search_uses_hugepages(self):
        assert PRESETS["search"].hugepages
        assert not PRESETS["clang"].hugepages

    def test_derived_ratios(self):
        clang = PRESETS["clang"]
        assert clang.bbs_per_func == pytest.approx(2_100_000 / 160_000)
        assert 20 < clang.bytes_per_bb < 50


class TestGenerator:
    def test_deterministic(self):
        a = generate_workload(PRESETS["505.mcf"], scale=1.0, seed=4)
        b = generate_workload(PRESETS["505.mcf"], scale=1.0, seed=4)
        assert a.num_blocks == b.num_blocks
        assert [m.name for m in a.modules] == [m.name for m in b.modules]
        for ma, mb in zip(a.modules, b.modules):
            for fa, fb in zip(ma.functions, mb.functions):
                assert fa.name == fb.name
                assert fa.num_blocks == fb.num_blocks

    def test_seed_changes_output(self):
        a = generate_workload(PRESETS["505.mcf"], scale=1.0, seed=4)
        b = generate_workload(PRESETS["505.mcf"], scale=1.0, seed=5)
        assert a.num_blocks != b.num_blocks

    def test_verifies(self):
        for preset in ("505.mcf", "531.deepsjeng", "541.leela"):
            program = generate_workload(PRESETS[preset], scale=0.8, seed=1)
            verify_program(program)

    def test_entry_is_main(self):
        program = generate_workload(PRESETS["505.mcf"], scale=1.0, seed=0)
        assert program.entry_function == "main"
        assert program.has_function("main")

    def test_function_count_tracks_scale(self):
        small = generate_workload(PRESETS["clang"], scale=0.001, seed=0)
        large = generate_workload(PRESETS["clang"], scale=0.002, seed=0)
        assert large.num_functions == pytest.approx(2 * small.num_functions, rel=0.1)

    def test_blocks_per_function_tracks_preset(self):
        program = generate_workload(PRESETS["clang"], scale=0.004, seed=2)
        realized = program.num_blocks / program.num_functions
        target = PRESETS["clang"].bbs_per_func
        assert 0.5 * target < realized < 2.2 * target

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            generate_workload(PRESETS["clang"], scale=0)

    def test_features_propagate(self):
        program = generate_workload(PRESETS["spanner"], scale=0.0005, seed=0)
        assert "rseq" in program.features

    def test_call_graph_is_acyclic(self):
        program = generate_workload(PRESETS["505.mcf"], scale=1.0, seed=3)
        graph = {}
        for fn in program.all_functions():
            callees = set()
            for block in fn.blocks:
                for instr in block.instrs:
                    if isinstance(instr, Call):
                        if instr.callee:
                            callees.add(instr.callee)
                        for target, _ in instr.indirect_targets:
                            callees.add(target)
            graph[fn.name] = callees
        state = {}

        def visit(node):
            if state.get(node) == 1:
                raise AssertionError(f"call cycle through {node}")
            if state.get(node) == 2:
                return
            state[node] = 1
            for succ in graph.get(node, ()):
                visit(succ)
            state[node] = 2

        for name in graph:
            visit(name)

    def test_hot_module_fraction_tracks_pct_cold(self):
        program = generate_workload(PRESETS["mysql"], scale=0.003, seed=1)
        # Modules whose functions include a dispatch-reachable hot
        # function: approximated via indirect targets of main.
        main = program.function("main")
        roots = set()
        for block in main.blocks:
            for instr in block.instrs:
                if isinstance(instr, Call):
                    roots.update(t for t, _ in instr.indirect_targets)
        hot_modules = {program.module_of(r).name for r in roots}
        frac = len(hot_modules) / len(program.modules)
        assert frac <= (1.0 - PRESETS["mysql"].pct_cold_objects) + 0.1

    def test_every_preset_generates(self):
        for preset in ALL_PRESETS:
            program = generate_workload(preset, scale=0.0003, seed=0, min_funcs=20)
            assert program.num_functions >= 20
            verify_program(program)

    def test_landing_pads_generated_for_exception_heavy_presets(self):
        program = generate_workload(PRESETS["523.xalancbmk"], scale=0.2, seed=1)
        pads = sum(
            1 for fn in program.all_functions() for b in fn.blocks if b.is_landing_pad
        )
        assert pads > 0

    def test_hand_written_functions_for_jumptable_presets(self):
        program = generate_workload(PRESETS["spanner"], scale=0.001, seed=1)
        assert any(fn.hand_written for fn in program.all_functions())
