"""Tests for file formats and the CLI."""

import argparse
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import verify_program
from repro.ir.digest import module_digest
from repro.profiles import LBRSample, PerfData
from repro.synth import PRESETS, generate_workload
from repro.tools import (
    load_perf_data,
    load_program,
    program_from_json,
    program_to_json,
    save_perf_data,
    save_program,
)
from repro.tools.cli import PIPELINE_FLAG_FIELDS, build_parser, main


class TestProgramJSON:
    def test_roundtrip_preserves_digests(self, small_program):
        rebuilt = program_from_json(program_to_json(small_program))
        verify_program(rebuilt)
        assert rebuilt.name == small_program.name
        assert rebuilt.entry_function == small_program.entry_function
        assert rebuilt.features == small_program.features
        for a, b in zip(small_program.modules, rebuilt.modules):
            assert module_digest(a) == module_digest(b)

    def test_file_roundtrip(self, tmp_path, tiny_program):
        path = tmp_path / "prog.json"
        save_program(tiny_program, path)
        rebuilt = load_program(path)
        assert rebuilt.num_blocks == tiny_program.num_blocks

    def test_json_is_plain_data(self, tiny_program):
        json.dumps(program_to_json(tiny_program))  # must not raise

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro program"):
            program_from_json({"format": "other"})

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            program_from_json({"format": "repro-program", "version": 99})


class TestPerfFormat:
    def _perf(self, samples):
        return PerfData(
            samples=[LBRSample(records=tuple(s)) for s in samples], period=31
        )

    def test_roundtrip(self, tmp_path):
        perf = self._perf([[(0x400000, 0x400010)], [(0x400020, 0x400000), (1, 2)]])
        path = tmp_path / "p.lbr"
        save_perf_data(perf, path)
        loaded = load_perf_data(path)
        assert loaded.period == 31
        assert [s.records for s in loaded.samples] == [s.records for s in perf.samples]

    def test_empty_profile(self, tmp_path):
        path = tmp_path / "e.lbr"
        save_perf_data(self._perf([]), path)
        assert load_perf_data(path).num_samples == 0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.lbr"
        path.write_bytes(b"NOPE" + b"\x00" * 10)
        with pytest.raises(ValueError, match="magic"):
            load_perf_data(path)

    def test_trailing_bytes_rejected(self, tmp_path):
        perf = self._perf([[(1, 2)]])
        path = tmp_path / "t.lbr"
        save_perf_data(perf, path)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(ValueError, match="trailing"):
            load_perf_data(path)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(min_value=0, max_value=2**63),
                          st.integers(min_value=0, max_value=2**63)),
                max_size=32,
            ),
            max_size=10,
        )
    )
    def test_roundtrip_property(self, samples):
        import tempfile
        from pathlib import Path

        perf = self._perf(samples)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.lbr"
            save_perf_data(perf, path)
            loaded = load_perf_data(path)
        assert [list(s.records) for s in loaded.samples] == [list(s) for s in samples]


class TestCLI:
    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "clang" in out and "505.mcf" in out

    def test_generate_unknown_preset(self, tmp_path, capsys):
        assert main(["generate", "--preset", "nope", "-o", str(tmp_path / "x.json")]) == 2

    def test_generate_and_optimize(self, tmp_path, capsys):
        prog = tmp_path / "p.json"
        assert main(["generate", "--preset", "531.deepsjeng", "--scale", "0.3",
                     "--seed", "7", "-o", str(prog)]) == 0
        report = tmp_path / "report.txt"
        assert main(["optimize", str(prog), "--report", str(report),
                     "--lbr-branches", "40000", "--pgo-steps", "20000"]) == 0
        assert "propeller phase 4" in report.read_text()

    def test_profile_and_wpa(self, tmp_path):
        prog = tmp_path / "p.json"
        main(["generate", "--preset", "531.deepsjeng", "--scale", "0.3",
              "--seed", "7", "-o", str(prog)])
        lbr = tmp_path / "p.lbr"
        assert main(["profile", str(prog), "-o", str(lbr),
                     "--lbr-branches", "40000", "--pgo-steps", "20000"]) == 0
        cc = tmp_path / "cc.txt"
        ld = tmp_path / "ld.txt"
        assert main(["wpa", str(prog), str(lbr), "--cc-prof", str(cc),
                     "--ld-prof", str(ld), "--pgo-steps", "20000"]) == 0
        from repro.core.bbsections import parse_cc_prof, parse_ld_prof

        clusters = parse_cc_prof(cc.read_text())
        assert clusters
        assert parse_ld_prof(ld.read_text())

    def test_profile_honors_lbr_period(self, tmp_path):
        prog = tmp_path / "p.json"
        main(["generate", "--preset", "531.deepsjeng", "--scale", "0.3",
              "--seed", "7", "-o", str(prog)])
        lbr = tmp_path / "p.lbr"
        assert main(["profile", str(prog), "-o", str(lbr),
                     "--lbr-branches", "40000", "--pgo-steps", "20000",
                     "--lbr-period", "53"]) == 0
        assert load_perf_data(lbr).period == 53

    def test_optimize_emits_trace_and_metrics(self, tmp_path):
        prog = tmp_path / "p.json"
        main(["generate", "--preset", "531.deepsjeng", "--scale", "0.3",
              "--seed", "7", "-o", str(prog)])
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["optimize", str(prog),
                     "--lbr-branches", "40000", "--pgo-steps", "20000",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0

        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        assert any(e.get("ph") == "M" for e in events)
        phase_names = {e["name"] for e in events
                       if e.get("ph") == "X" and e.get("cat") == "phase"}
        assert phase_names == {"phase:baseline", "phase:metadata-build",
                               "phase:profile", "phase:wpa", "phase:relink"}

        from repro.obs import METRICS_SCHEMA_VERSION, PipelineReport

        payload = json.loads(metrics_path.read_text())
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        report = PipelineReport.from_json(payload)
        assert report.counters.get("cache.hits", 0) + report.counters["cache.misses"] > 0
        assert 0.0 <= report.gauges["pgo.match_rate"] <= 1.0
        assert all(p.peak_memory_bytes >= 0 for p in report.phases)


class TestCLIAPIDiscipline:
    def test_defaults_match_pipeline_config(self):
        """CLI defaults come from PipelineConfig -- provably identical."""
        from repro.core.pipeline import PipelineConfig

        config = PipelineConfig()
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if isinstance(a, argparse._SubParsersAction))
        for cmd in ("profile", "wpa", "optimize", "compare"):
            cmd_parser = sub.choices[cmd]
            for dest, field in PIPELINE_FLAG_FIELDS.items():
                assert cmd_parser.get_default(dest) == getattr(config, field), (
                    f"{cmd} --{dest.replace('_', '-')} default diverges from "
                    f"PipelineConfig.{field}"
                )

    def test_cli_calls_no_private_pipeline_methods(self):
        """The CLI and the examples must use only the public pipeline
        API -- no ``pipe._foo(...)`` calls, no retired names."""
        import inspect
        import re
        from pathlib import Path

        import repro.tools.cli as cli

        sources = {"repro/tools/cli.py": inspect.getsource(cli)}
        examples_dir = Path(__file__).resolve().parent.parent / "examples"
        for path in sorted(examples_dir.glob("*.py")):
            sources[f"examples/{path.name}"] = path.read_text()

        for label, source in sources.items():
            private_calls = re.findall(r"\b(?:pipe|pipeline)\._\w+", source)
            assert not private_calls, f"{label}: {private_calls}"
            retired = re.findall(r"repro\.profiling|\b_link_options\b", source)
            assert not retired, f"{label}: {retired}"
