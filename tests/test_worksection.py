"""Unit tests for WorkSection splicing (the relaxation substrate)."""

from repro.elf import (
    BlockMeta,
    BranchFixup,
    Relocation,
    RelocType,
    Section,
    SectionKind,
    TerminatorKind,
    TerminatorMeta,
)
from repro.isa import Opcode
from repro.linker.worksection import WorkSection, WorkSymbol


def _section_with_layout():
    """20 bytes, two blocks [0,10) and [10,20), jump at offset 15."""
    section = Section(name=".text.f", kind=SectionKind.TEXT, data=bytearray(range(20)))
    section.relocations.append(Relocation(offset=16, rtype=RelocType.PC32, symbol="x"))
    section.branch_fixups.append(
        BranchFixup(offset=15, opcode=Opcode.JMP_LONG, symbol="x", deletable=True)
    )
    section.blocks.append(BlockMeta(
        bb_id=0, func="f", offset=0, size=10,
        term=TerminatorMeta(kind=TerminatorKind.FALLTHROUGH),
    ))
    section.blocks.append(BlockMeta(
        bb_id=1, func="f", offset=10, size=10,
        term=TerminatorMeta(kind=TerminatorKind.JUMP, uncond_target="x",
                            uncond_br_offset=15, uncond_br_size=5),
    ))
    ws = WorkSection(section, origin="t.o")
    ws.symbols.append(WorkSymbol(name="f", offset=0, size=20, binding=None, stype=None))
    ws.symbols.append(WorkSymbol(name=".Lf.__bb1", offset=10, size=0, binding=None, stype=None))
    return ws


class TestSplice:
    def test_inputs_not_mutated(self):
        section = Section(name=".t", kind=SectionKind.TEXT, data=bytearray(b"abcd"))
        ws = WorkSection(section, origin="o")
        ws.splice(0, 2, b"")
        assert bytes(section.data) == b"abcd"

    def test_delete_shifts_following_records(self):
        ws = _section_with_layout()
        delta = ws.splice(15, 5, b"")
        assert delta == -5
        assert ws.size == 15
        # The relocation inside the deleted range is dropped.
        assert not ws.relocations
        # The containing block shrank; the earlier block is untouched.
        assert ws.blocks[0].size == 10
        assert ws.blocks[1].size == 5
        # Terminator offsets inside the deleted instruction stay put
        # (callers rewrite them); symbols after the splice shift.
        assert ws.symbols[1].offset == 10

    def test_delete_in_first_block_shifts_second(self):
        ws = _section_with_layout()
        ws.splice(2, 4, b"")
        assert ws.blocks[0].size == 6
        assert ws.blocks[1].offset == 6
        assert ws.blocks[1].term.uncond_br_offset == 11
        assert ws.relocations[0].offset == 12
        assert ws.fixups[0].offset == 11
        assert ws.symbols[1].offset == 6

    def test_replace_keeps_total_accounting(self):
        ws = _section_with_layout()
        ws.splice(15, 5, b"\xeb\x00")  # long jump replaced by short form
        assert ws.size == 17
        assert ws.blocks[1].size == 7
        assert bytes(ws.data[15:17]) == b"\xeb\x00"

    def test_out_of_bounds_rejected(self):
        ws = _section_with_layout()
        try:
            ws.splice(18, 5, b"")
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_block_containing(self):
        ws = _section_with_layout()
        assert ws.block_containing(0).bb_id == 0
        assert ws.block_containing(9).bb_id == 0
        assert ws.block_containing(10).bb_id == 1
        assert ws.block_containing(19).bb_id == 1
        assert ws.block_containing(25) is None
