"""Tests for Phase 3: whole-program analysis."""

import pytest

from repro.analysis import MemoryMeter
from repro.codegen import CodeGenOptions, compile_program
from repro.core import bbsections
from repro.core.wpa import WPAOptions, _merge_superblocks, analyze
from repro.linker import LinkOptions, link
from repro.profiles import collect_lbr_profile
from repro.synth import PRESETS, generate_workload


@pytest.fixture(scope="module")
def program():
    return generate_workload(PRESETS["531.deepsjeng"], scale=0.6, seed=9)


@pytest.fixture(scope="module")
def metadata_exe(program):
    objs = compile_program(program, CodeGenOptions(bb_addr_map=True))
    return link([c.obj for c in objs], LinkOptions(keep_bb_addr_map=True)).executable


@pytest.fixture(scope="module")
def perf(metadata_exe):
    return collect_lbr_profile(metadata_exe, max_branches=80_000, period=31, seed=4)


@pytest.fixture(scope="module")
def result(metadata_exe, perf):
    return analyze(metadata_exe, perf)


class TestAnalyze:
    def test_requires_bb_addr_map(self, program, perf):
        objs = compile_program(program, CodeGenOptions())  # no metadata
        exe = link([c.obj for c in objs]).executable
        with pytest.raises(ValueError, match="address map"):
            analyze(exe, perf)

    def test_hot_functions_detected(self, result):
        assert result.hot_functions
        assert "main" in result.hot_functions
        assert set(result.hot_functions) == set(result.clusters)

    def test_primary_cluster_starts_with_entry(self, result, program):
        for fn, clusters in result.clusters.items():
            entry_id = program.function(fn).entry.bb_id
            assert clusters[0][0] == entry_id

    def test_clusters_have_no_duplicates(self, result):
        for fn, clusters in result.clusters.items():
            flat = [bb for c in clusters for bb in c]
            assert len(flat) == len(set(flat))

    def test_clusters_reference_real_blocks(self, result, program):
        for fn, clusters in result.clusters.items():
            function = program.function(fn)
            for cluster in clusters:
                for bb in cluster:
                    assert function.has_block(bb)

    def test_symbol_order_covers_hot_functions(self, result):
        order = set(result.symbol_order)
        for fn in result.hot_functions:
            assert fn in order

    def test_cold_symbols_after_primaries(self, result):
        order = result.symbol_order
        last_primary = max(
            i for i, s in enumerate(order) if not s.endswith(".cold")
        )
        first_cold = min(
            (i for i, s in enumerate(order) if s.endswith(".cold")), default=None
        )
        if first_cold is not None:
            assert first_cold > 0
            assert all(s.endswith(".cold") for s in order[first_cold:])

    def test_directive_texts_parse(self, result):
        parsed = bbsections.parse_cc_prof(result.cc_prof_text)
        assert parsed == {k: [list(c) for c in v] for k, v in result.clusters.items()}
        assert bbsections.parse_ld_prof(result.ld_prof_text) == result.symbol_order

    def test_dcfg_counts_positive(self, result):
        for fd in result.dcfg.values():
            assert all(c > 0 for c in fd.block_counts.values())
            assert all(w > 0 for w in fd.edges.values())

    def test_call_edges_between_known_functions(self, result, program):
        for (caller, callee), weight in result.call_edges.items():
            assert program.has_function(caller)
            assert program.has_function(callee)
            assert weight > 0

    def test_stats_accounting(self, result, perf):
        stats = result.stats
        assert stats.num_samples == perf.num_samples
        assert stats.num_records > 0
        assert stats.profile_bytes == perf.size_bytes
        assert stats.dcfg_nodes > 0
        assert stats.peak_memory_bytes > perf.size_bytes
        assert stats.cost_units > 0

    def test_meter_balances(self, metadata_exe, perf):
        meter = MemoryMeter()
        analyze(metadata_exe, perf, meter=meter)
        assert meter.live_bytes == 0
        assert meter.peak_bytes > 0

    def test_split_cold_off_keeps_all_blocks(self, metadata_exe, perf, program):
        result = analyze(metadata_exe, perf, WPAOptions(split_cold=False))
        for fn, clusters in result.clusters.items():
            assert len(clusters[0]) == program.function(fn).num_blocks

    @pytest.mark.slow
    def test_deterministic(self, metadata_exe, perf):
        a = analyze(metadata_exe, perf)
        b = analyze(metadata_exe, perf)
        assert a.clusters == b.clusters
        assert a.symbol_order == b.symbol_order


class TestInterproc:
    @pytest.mark.slow
    def test_interproc_clusters_valid(self, metadata_exe, perf, program):
        result = analyze(metadata_exe, perf, WPAOptions(interproc=True))
        assert result.clusters
        for fn, clusters in result.clusters.items():
            entry_id = program.function(fn).entry.bb_id
            assert clusters[0][0] == entry_id or entry_id in clusters[0]
            flat = [bb for c in clusters for bb in c]
            assert len(flat) == len(set(flat))

    @pytest.mark.slow
    def test_interproc_symbols_match_cluster_naming(self, metadata_exe, perf):
        result = analyze(metadata_exe, perf, WPAOptions(interproc=True))
        for symbol in result.symbol_order:
            base = symbol.split(".")[0] if "." in symbol else symbol
            assert base in result.clusters or symbol in result.clusters

    def test_interproc_node_cap(self, metadata_exe, perf):
        with pytest.raises(ValueError, match="too large"):
            analyze(metadata_exe, perf, WPAOptions(interproc=True, max_interproc_nodes=1))


class TestSuperblocks:
    def test_full_flow_merges(self):
        counts = {0: 100.0, 1: 100.0, 2: 100.0}
        edges = {(0, 1): 100.0, (1, 2): 100.0}
        assert _merge_superblocks([0, 1, 2], counts, edges) == [[0, 1, 2]]

    def test_partial_flow_splits(self):
        counts = {0: 100.0, 1: 50.0, 2: 50.0}
        edges = {(0, 1): 50.0, (1, 2): 50.0}
        assert _merge_superblocks([0, 1, 2], counts, edges) == [[0], [1, 2]]

    def test_no_edge_no_merge(self):
        counts = {0: 10.0, 1: 10.0}
        assert _merge_superblocks([0, 1], counts, {}) == [[0], [1]]

    def test_empty(self):
        assert _merge_superblocks([], {}, {}) == []
